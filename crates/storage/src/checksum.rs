//! CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320) used for per-page
//! checksums in the on-disk format. Table-driven, no dependencies.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ 0xEDB8_8320 } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC32 of `data` (standard IEEE: init all-ones, final xor all-ones).
pub fn crc32(data: &[u8]) -> u32 {
    let mut h = Crc32::new();
    h.update(data);
    h.finish()
}

/// Incremental CRC32 over a sequence of chunks; equal to [`crc32`] of their
/// concatenation. The journal uses this to checksum a whole staged image
/// without materializing it contiguously.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Self::new()
    }
}

impl Crc32 {
    /// Fresh hasher.
    pub fn new() -> Self {
        Crc32 { state: 0xFFFF_FFFF }
    }

    /// Fold `data` into the running checksum.
    pub fn update(&mut self, data: &[u8]) {
        let mut crc = self.state;
        for &b in data {
            crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// The checksum of everything folded in so far.
    pub fn finish(&self) -> u32 {
        self.state ^ 0xFFFF_FFFF
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard CRC32 check values.
        assert_eq!(crc32(b""), 0x0000_0000);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b"The quick brown fox jumps over the lazy dog"), 0x414F_A339);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data: Vec<u8> = (0..10_000).map(|i| (i * 31 % 253) as u8).collect();
        for split in [0usize, 1, 100, 5000, 9999, 10_000] {
            let mut h = Crc32::new();
            h.update(&data[..split]);
            h.update(&data[split..]);
            assert_eq!(h.finish(), crc32(&data), "split at {split}");
        }
    }

    #[test]
    fn detects_single_bit_flips() {
        let data: Vec<u8> = (0..4096).map(|i| (i * 7 % 251) as u8).collect();
        let base = crc32(&data);
        for pos in [0usize, 1, 100, 2048, 4095] {
            for bit in 0..8 {
                let mut m = data.clone();
                m[pos] ^= 1 << bit;
                assert_ne!(crc32(&m), base, "flip at byte {pos} bit {bit} undetected");
            }
        }
    }
}
