//! Error type for the storage engine.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A page id outside the allocated range was referenced.
    PageOutOfRange { page: u64, count: u64 },
    /// A record or key/value pair larger than a page can hold.
    RecordTooLarge { size: usize, max: usize },
    /// Structural corruption detected while reading.
    Corrupt(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageOutOfRange { page, count } => {
                write!(f, "page {page} out of range (allocated {count})")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds max {max}")
            }
            StorageError::Corrupt(msg) => write!(f, "corrupt storage: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
