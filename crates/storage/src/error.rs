//! Error type for the storage engine.

use std::fmt;

/// Errors raised by the storage engine.
#[derive(Debug)]
pub enum StorageError {
    /// Underlying file I/O failure.
    Io(std::io::Error),
    /// A page id outside the allocated range was referenced.
    PageOutOfRange { page: u64, count: u64 },
    /// A record or key/value pair larger than a page can hold.
    RecordTooLarge { size: usize, max: usize },
    /// A page's stored CRC32 does not match its payload: the page was
    /// corrupted at rest or torn during a write.
    ChecksumMismatch { page: u64 },
    /// The store file's header is invalid (bad magic, unsupported version,
    /// mismatched page size, or a length inconsistent with the page count).
    BadHeader { detail: String },
    /// Structural corruption detected while reading, with the page it was
    /// found on when known.
    Corrupt { page: Option<u64>, detail: String },
    /// An earlier `sync` failed, so the durable state of the store is
    /// unknown; the pager refuses further writes until reopened. Continuing
    /// to write after a failed fsync can silently mix durable and
    /// non-durable pages, which is exactly the torn state checksums cannot
    /// repair.
    Poisoned,
}

impl StorageError {
    /// Corruption not attributable to a specific page.
    pub fn corrupt(detail: impl Into<String>) -> Self {
        StorageError::Corrupt { page: None, detail: detail.into() }
    }

    /// Corruption detected on a specific page.
    pub fn corrupt_at(page: u64, detail: impl Into<String>) -> Self {
        StorageError::Corrupt { page: Some(page), detail: detail.into() }
    }
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::Io(e) => write!(f, "storage I/O error: {e}"),
            StorageError::PageOutOfRange { page, count } => {
                write!(f, "page {page} out of range (allocated {count})")
            }
            StorageError::RecordTooLarge { size, max } => {
                write!(f, "record of {size} bytes exceeds max {max}")
            }
            StorageError::ChecksumMismatch { page } => {
                write!(f, "checksum mismatch on page {page}")
            }
            StorageError::BadHeader { detail } => write!(f, "invalid store header: {detail}"),
            StorageError::Corrupt { page: Some(p), detail } => {
                write!(f, "corrupt storage on page {p}: {detail}")
            }
            StorageError::Corrupt { page: None, detail } => {
                write!(f, "corrupt storage: {detail}")
            }
            StorageError::Poisoned => {
                write!(f, "store poisoned by an earlier sync failure; reopen to continue")
            }
        }
    }
}

impl std::error::Error for StorageError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            StorageError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for StorageError {
    fn from(e: std::io::Error) -> Self {
        StorageError::Io(e)
    }
}

/// Convenience alias.
pub type Result<T> = std::result::Result<T, StorageError>;
