//! A clock-eviction buffer pool over a [`Pager`].
//!
//! Access is closure-scoped (`with_page` / `with_page_mut`), which keeps the
//! pin/unpin discipline impossible to get wrong at the API boundary. Dirty
//! frames are written back on eviction and on [`BufferPool::flush`].

use crate::error::Result;
use crate::page::{Page, PageId};
use crate::pager::Pager;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;
use xquec_obs::counter;

struct Frame {
    id: PageId,
    page: Page,
    dirty: bool,
    referenced: bool,
}

struct Inner {
    map: HashMap<PageId, usize>,
    frames: Vec<Frame>,
    hand: usize,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Buffer pool with clock (second-chance) replacement.
pub struct BufferPool {
    pager: Arc<dyn Pager>,
    capacity: usize,
    inner: Mutex<Inner>,
}

/// Hit/miss/eviction counters for instrumentation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PoolStats {
    /// Page requests served from memory.
    pub hits: u64,
    /// Page requests that went to the pager.
    pub misses: u64,
    /// Resident frames replaced to make room for a faulted-in page.
    pub evictions: u64,
}

impl BufferPool {
    /// Create a pool of `capacity` frames over `pager`.
    pub fn new(pager: Arc<dyn Pager>, capacity: usize) -> Self {
        assert!(capacity > 0, "buffer pool needs at least one frame");
        BufferPool {
            pager,
            capacity,
            inner: Mutex::new(Inner {
                map: HashMap::new(),
                frames: Vec::new(),
                hand: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
        }
    }

    /// Allocate a fresh page in the underlying pager.
    pub fn allocate(&self) -> Result<PageId> {
        self.pager.allocate()
    }

    /// Pages allocated in the underlying pager. Chain walks (leaf chains,
    /// overflow chains) use this to bound their step count: a well-formed
    /// chain can never be longer than the store itself.
    pub fn page_count(&self) -> u64 {
        self.pager.page_count()
    }

    /// Run `f` with read access to page `id`.
    pub fn with_page<R>(&self, id: PageId, f: impl FnOnce(&Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let slot = self.load(&mut inner, id)?;
        inner.frames[slot].referenced = true;
        Ok(f(&inner.frames[slot].page))
    }

    /// Run `f` with write access to page `id`; the frame is marked dirty.
    pub fn with_page_mut<R>(&self, id: PageId, f: impl FnOnce(&mut Page) -> R) -> Result<R> {
        let mut inner = self.inner.lock();
        let slot = self.load(&mut inner, id)?;
        inner.frames[slot].referenced = true;
        inner.frames[slot].dirty = true;
        Ok(f(&mut inner.frames[slot].page))
    }

    /// Write all dirty frames back and sync the pager.
    pub fn flush(&self) -> Result<()> {
        let mut inner = self.inner.lock();
        for frame in &mut inner.frames {
            if frame.dirty {
                self.pager.write_page(frame.id, &frame.page)?;
                frame.dirty = false;
            }
        }
        self.pager.sync()
    }

    /// Current hit/miss counters.
    pub fn stats(&self) -> PoolStats {
        let inner = self.inner.lock();
        PoolStats { hits: inner.hits, misses: inner.misses, evictions: inner.evictions }
    }

    /// Locate (or fault in) page `id`, returning its frame slot.
    fn load(&self, inner: &mut Inner, id: PageId) -> Result<usize> {
        if let Some(&slot) = inner.map.get(&id) {
            inner.hits += 1;
            counter!("storage.pool.hit").inc();
            return Ok(slot);
        }
        inner.misses += 1;
        counter!("storage.pool.miss").inc();
        let mut page = Page::new();
        self.pager.read_page(id, &mut page)?;
        if inner.frames.len() < self.capacity {
            let slot = inner.frames.len();
            inner.frames.push(Frame { id, page, dirty: false, referenced: true });
            inner.map.insert(id, slot);
            return Ok(slot);
        }
        // Clock eviction: find a frame whose reference bit is clear.
        let slot = loop {
            let hand = inner.hand;
            inner.hand = (inner.hand + 1) % self.capacity;
            if inner.frames[hand].referenced {
                inner.frames[hand].referenced = false;
            } else {
                break hand;
            }
        };
        let victim = &inner.frames[slot];
        if victim.dirty {
            self.pager.write_page(victim.id, &victim.page)?;
        }
        let old_id = victim.id;
        inner.evictions += 1;
        counter!("storage.pool.eviction").inc();
        inner.map.remove(&old_id);
        inner.frames[slot] = Frame { id, page, dirty: false, referenced: true };
        inner.map.insert(id, slot);
        Ok(slot)
    }
}

#[cfg(test)]
#[allow(clippy::unwrap_used)]
mod tests {
    use super::*;
    use crate::pager::MemPager;

    fn pool(cap: usize) -> BufferPool {
        BufferPool::new(Arc::new(MemPager::new()), cap)
    }

    #[test]
    fn read_write_through() {
        let p = pool(4);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg.put_u32(0, 7)).unwrap();
        assert_eq!(p.with_page(id, |pg| pg.get_u32(0)).unwrap(), 7);
    }

    #[test]
    fn eviction_writes_back_dirty_pages() {
        let p = pool(2);
        let ids: Vec<_> = (0..5).map(|_| p.allocate().unwrap()).collect();
        for (i, &id) in ids.iter().enumerate() {
            p.with_page_mut(id, |pg| pg.put_u32(0, i as u32)).unwrap();
        }
        // All five pages were touched through a 2-frame pool; re-read them.
        for (i, &id) in ids.iter().enumerate() {
            assert_eq!(p.with_page(id, |pg| pg.get_u32(0)).unwrap(), i as u32);
        }
        let stats = p.stats();
        assert!(stats.misses >= 5, "{stats:?}");
        // A 2-frame pool faulting ≥5 pages must have evicted to make room.
        assert!(stats.evictions >= 3, "{stats:?}");
        assert_eq!(stats.evictions, stats.misses - 2, "{stats:?}");
    }

    #[test]
    fn hits_counted() {
        let p = pool(2);
        let id = p.allocate().unwrap();
        for _ in 0..10 {
            p.with_page(id, |_| ()).unwrap();
        }
        let stats = p.stats();
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.hits, 9);
    }

    #[test]
    fn flush_persists() {
        let pager = Arc::new(MemPager::new());
        let p = BufferPool::new(pager.clone(), 2);
        let id = p.allocate().unwrap();
        p.with_page_mut(id, |pg| pg.put_u64(8, 99)).unwrap();
        p.flush().unwrap();
        let mut out = Page::new();
        pager.read_page(id, &mut out).unwrap();
        assert_eq!(out.get_u64(8), 99);
    }
}
