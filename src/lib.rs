//! # XQueC — an XQuery processor and compressor for XML data
//!
//! A from-scratch Rust reproduction of *Arion, Bonifati, Costa, D'Aguanno,
//! Manolescu, Pugliese: "Efficient Query Evaluation over Compressed XML
//! Data", EDBT 2004*.
//!
//! This facade crate re-exports the workspace members:
//!
//! * [`xml`] — XML parser, DOM, and the synthetic evaluation datasets;
//! * [`compress`] — the codec pool (Huffman, ALM, Hu-Tucker, numeric, blz);
//! * [`storage`] — the embedded page/B+tree storage engine;
//! * [`core`] — the XQueC system: compressed repository, workload-aware
//!   compression configuration, and the XQuery processor;
//! * [`baselines`] — XMill-, XGrind-, XPRESS- and Galax-like comparators.
//!
//! See the `examples/` directory for runnable walkthroughs and
//! `crates/bench` for the harness regenerating the paper's tables/figures.

pub use xquec_baselines as baselines;
pub use xquec_compress as compress;
pub use xquec_core as core;
pub use xquec_storage as storage;
pub use xquec_xml as xml;
