//! Compression explorer — compare every codec in the pool plus the three
//! baseline systems on any of the built-in datasets.
//!
//! ```sh
//! cargo run --release --example compression_explorer [xmark|shakespeare|courses|baseball] [bytes]
//! ```

use xquec::baselines::{XgrindDoc, XmillDoc, XpressDoc};
use xquec::compress::{blz, CodecKind, ValueCodec};
use xquec::core::loader::load;
use xquec::xml::gen::Dataset;

fn main() {
    let which = std::env::args().nth(1).unwrap_or_else(|| "xmark".into());
    let bytes: usize = std::env::args().nth(2).and_then(|a| a.parse().ok()).unwrap_or(500_000);
    let ds = match which.as_str() {
        "shakespeare" => Dataset::Shakespeare,
        "courses" => Dataset::Courses,
        "baseball" => Dataset::Baseball,
        _ => Dataset::Xmark,
    };
    println!("dataset: {} (~{bytes} bytes)", ds.name());
    let xml = ds.generate(bytes);

    // Whole-document systems.
    println!("\nwhole-document systems:");
    let repo = load(&xml).expect("xquec load");
    let r = repo.size_report();
    println!("  XQueC        CF {:>5.1}%  (containers {}, summary {} nodes)",
        r.compression_factor() * 100.0, repo.containers.len(), repo.summary.len());
    let xmill = XmillDoc::compress(&xml).expect("xmill");
    println!("  XMill-like   CF {:>5.1}%  (no individual value access)", xmill.compression_factor() * 100.0);
    let xgrind = XgrindDoc::compress(&xml).expect("xgrind");
    println!("  XGrind-like  CF {:>5.1}%  (homomorphic, top-down scans)", xgrind.compression_factor() * 100.0);
    let xpress = XpressDoc::compress(&xml).expect("xpress");
    println!("  XPRESS-like  CF {:>5.1}%  (reverse arithmetic path intervals)", xpress.compression_factor() * 100.0);

    // Per-codec view of the largest text container.
    let Some((cid, _)) = repo
        .containers
        .iter()
        .enumerate()
        .filter(|(_, c)| c.vtype == xquec::core::ValueType::Str)
        .max_by_key(|(_, c)| c.plain_size())
        .map(|(i, c)| (xquec::core::ContainerId(i as u32), c.plain_size()))
    else {
        println!("no text containers");
        return;
    };
    let container = repo.container(cid);
    let values = container.decompress_all().expect("freshly loaded container decodes");
    let plain: usize = values.iter().map(|v| v.len()).sum();
    println!(
        "\nlargest text container: {} ({} values, {} bytes)",
        repo.container_path_string(cid),
        values.len(),
        plain
    );
    let corpus: Vec<&[u8]> = values.iter().map(|v| v.as_bytes()).collect();
    println!("  {:<12} {:>8} {:>8}  properties", "codec", "ratio", "model");
    for kind in [CodecKind::Raw, CodecKind::Huffman, CodecKind::HuTucker, CodecKind::Alm] {
        let codec = ValueCodec::train(kind, &corpus);
        let comp: usize = values
            .iter()
            .map(|v| codec.compress(v.as_bytes()).map_or(v.len(), |c| c.len()))
            .sum();
        let p = kind.properties();
        println!(
            "  {:<12} {:>7.1}% {:>7}B  eq={} ineq={} wild={}",
            kind.name(),
            comp as f64 / plain as f64 * 100.0,
            codec.model_size(),
            p.eq as u8,
            p.ineq as u8,
            p.wild as u8
        );
    }
    let joined: Vec<u8> = values.iter().flat_map(|v| v.as_bytes().iter().copied()).collect();
    let blz_len = blz::compress(&joined).len();
    println!(
        "  {:<12} {:>7.1}% {:>7}B  (block: no per-value access)",
        "blz",
        blz_len as f64 / plain as f64 * 100.0,
        0
    );
}
