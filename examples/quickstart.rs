//! Quickstart: compress an XML document and query it in the compressed
//! domain.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use xquec::core::loader::{load_with, LoaderOptions, WorkloadSpec};
use xquec::core::query::Engine;
use xquec::core::PredOp;

fn main() {
    let xml = r#"<library>
        <book year="2004"><title>Efficient Query Evaluation over Compressed XML Data</title>
            <author>Arion</author><author>Bonifati</author><pages>19</pages></book>
        <book year="2000"><title>XMill: an Efficient Compressor for XML Data</title>
            <author>Liefke</author><author>Suciu</author><pages>12</pages></book>
        <book year="2002"><title>XGrind: A Query-friendly XML Compressor</title>
            <author>Tolani</author><author>Haritsa</author><pages>10</pages></book>
    </library>"#;

    // Tell the loader what the workload compares, so the cost-based search
    // (paper §3) picks codecs: equality on authors, ranges on years.
    let workload = WorkloadSpec::new()
        .constant("/library/book/author/text()", PredOp::Eq)
        .constant("/library/book/@year", PredOp::Ineq)
        .project("/library/book/title/text()");
    let opts = LoaderOptions { workload: Some(workload), ..Default::default() };
    let repo = load_with(xml, &opts).expect("well-formed XML");

    let report = repo.size_report();
    println!(
        "loaded {} bytes -> {} compressed ({} containers, CF {:.1}%)",
        report.original,
        report.total(),
        repo.containers.len(),
        report.compression_factor() * 100.0
    );

    let engine = Engine::new(&repo);

    // Equality predicate: evaluated on compressed bytes.
    let q1 = r#"for $b in /library/book
                where $b/author/text() = "Suciu"
                return $b/title/text()"#;
    println!("\nbooks by Suciu: {}", engine.run(q1).expect("valid query"));

    // Range predicate: pushed down to a binary-searched container range.
    let q2 = r#"for $b in /library/book
                where $b/@year >= 2002
                return <hit year={$b/@year}>{ $b/title/text() }</hit>"#;
    println!("\nsince 2002:\n{}", engine.run(q2).expect("valid query"));

    // Aggregation.
    let q3 = "sum(/library/book/pages/text())";
    println!("\ntotal pages: {}", engine.run(q3).expect("valid query"));

    // Peek at the physical plan trace.
    println!("\noperator trace for the range query:");
    println!("{}", engine.explain(q2).expect("valid query"));
    let stats = engine.stats.borrow();
    println!(
        "(decompressions: {}, compressed-domain comparisons: {})",
        stats.decompressions,
        stats.compressed_eq + stats.compressed_cmp
    );
}
