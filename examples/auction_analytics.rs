//! Auction analytics over a compressed XMark document — the paper's
//! motivating scenario: run the XMark workload against a repository that was
//! compressed *for* that workload, and compare with the uncompressed
//! Galax-like engine.
//!
//! ```sh
//! cargo run --release --example auction_analytics [size_bytes]
//! ```

use std::time::Instant;
use xquec::baselines::GalaxEngine;
use xquec::core::loader::{load_with, LoaderOptions};
use xquec::core::queries::{xmark_workload, XMARK_QUERIES};
use xquec::core::query::Engine;
use xquec::xml::gen::Dataset;

fn main() {
    let bytes: usize = std::env::args().nth(1).and_then(|a| a.parse().ok()).unwrap_or(2_000_000);
    println!("generating an XMark-like auction document (~{bytes} bytes)…");
    let xml = Dataset::Xmark.generate(bytes);

    let t = Instant::now();
    let opts = LoaderOptions { workload: Some(xmark_workload()), ..Default::default() };
    let repo = load_with(&xml, &opts).expect("load");
    let report = repo.size_report();
    println!(
        "XQueC load: {:.2}s, {} -> {} bytes (CF {:.1}%)",
        t.elapsed().as_secs_f64(),
        report.original,
        report.total(),
        report.compression_factor() * 100.0
    );
    let engine = Engine::new(&repo);

    let t = Instant::now();
    let galax = GalaxEngine::load(&xml).expect("galax load");
    println!(
        "Galax load: {:.2}s, DOM footprint ~{} bytes",
        t.elapsed().as_secs_f64(),
        galax.memory_footprint()
    );

    println!("\n{:<5} {:>12} {:>12}  note", "query", "XQueC (ms)", "Galax (ms)");
    for q in XMARK_QUERIES.iter().filter(|q| q.in_figure7) {
        let t = Instant::now();
        let out = engine.run(q.text).expect("xquec query");
        let xq_ms = t.elapsed().as_secs_f64() * 1e3;

        galax.set_timeout(30.0);
        let t = Instant::now();
        let g = galax.run(q.text);
        let g_ms = t.elapsed().as_secs_f64() * 1e3;
        match g {
            Ok(gout) => println!(
                "{:<5} {:>12.2} {:>12.2}  {} ({} result bytes{})",
                q.id,
                xq_ms,
                g_ms,
                q.title,
                out.len(),
                if gout.len() == out.len() { ", results agree" } else { "" }
            ),
            Err(_) => println!(
                "{:<5} {:>12.2} {:>12}  {} (Galax did not finish, as in the paper)",
                q.id, xq_ms, "DNF", q.title
            ),
        }
    }
}
