//! Workload-aware compression tuning — the paper's §3 in action.
//!
//! Loads the same document under three compression configurations and shows
//! how the workload changes codec choices, source-model sharing, and the
//! compressed size:
//!
//! 1. no workload (everything ALM, the §2.1 default);
//! 2. an equality-join workload (join sides share one source model);
//! 3. an inequality workload (order-preserving codecs on the ranges).
//!
//! ```sh
//! cargo run --release --example workload_tuning
//! ```

use std::sync::Arc;
use xquec::core::loader::{load_with, LoaderOptions, WorkloadSpec};
use xquec::core::query::Engine;
use xquec::core::{PredOp, Repository};
use xquec::xml::gen::Dataset;

fn describe(tag: &str, repo: &Repository) {
    let report = repo.size_report();
    println!(
        "\n== {tag}: CF {:.1}% (containers {}, models {} bytes)",
        report.compression_factor() * 100.0,
        repo.containers.len(),
        report.models
    );
    for path in
        ["/site/people/person/@id", "/site/closed_auctions/closed_auction/buyer/@person", "/site/people/person/name/text()"]
    {
        if let Some(cid) = repo.container_by_path(path) {
            let c = repo.container(cid);
            println!(
                "   {path}: codec={}, storage={}, records={}",
                c.codec().kind().name(),
                if c.is_individual() { "individual" } else { "blz block" },
                c.len()
            );
        }
    }
}

fn main() {
    let xml = Dataset::Xmark.generate(1_000_000);

    // 1. No workload: ALM per container.
    let plain = load_with(&xml, &LoaderOptions::default()).expect("load");
    describe("no workload (ALM default)", &plain);

    // 2. Equality join workload: Q8/Q9 shape.
    let eq = WorkloadSpec::new()
        .join(
            "/site/closed_auctions/closed_auction/buyer/@person",
            "/site/people/person/@id",
            PredOp::Eq,
        )
        .project("/site/people/person/name/text()");
    let repo_eq = load_with(&xml, &LoaderOptions { workload: Some(eq), ..Default::default() })
        .expect("load");
    describe("equality-join workload", &repo_eq);
    let ids = repo_eq.container_by_path("/site/people/person/@id").expect("exists");
    let refs = repo_eq
        .container_by_path("/site/closed_auctions/closed_auction/buyer/@person")
        .expect("exists");
    println!(
        "   join sides share one source model: {}",
        Arc::ptr_eq(repo_eq.container(ids).codec(), repo_eq.container(refs).codec())
    );

    // The join now runs on compressed bytes end to end.
    let engine = Engine::new(&repo_eq);
    let out = engine
        .run(
            r#"count(for $p in /site/people/person
                 let $a := for $t in /site/closed_auctions/closed_auction
                           where $t/buyer/@person = $p/@id return $t
                 where count($a) >= 1 return $p)"#,
        )
        .expect("query");
    let stats = engine.stats.borrow();
    println!(
        "   buyers with >=1 purchase: {out} (compressed-domain ops: {}, decompressions: {})",
        stats.compressed_eq + stats.compressed_cmp,
        stats.decompressions
    );
    drop(stats);

    // 3. Inequality workload: names must be order-comparable compressed.
    let ineq = WorkloadSpec::new().constant("/site/people/person/name/text()", PredOp::Ineq);
    let repo_ineq = load_with(&xml, &LoaderOptions { workload: Some(ineq), ..Default::default() })
        .expect("load");
    describe("inequality workload on names", &repo_ineq);
    let names = repo_ineq.container_by_path("/site/people/person/name/text()").expect("exists");
    println!(
        "   name codec order-preserving: {}",
        repo_ineq.container(names).codec().order_preserving()
    );
}
