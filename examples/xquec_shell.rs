//! Interactive XQueC shell: load (or generate) a document, then type XQuery
//! expressions against the compressed repository.
//!
//! ```sh
//! cargo run --release --example xquec_shell [file.xml | xmark:BYTES]
//! ```
//!
//! Commands: `.stats` (repository sizes), `.containers` (codec per
//! container), `.explain <query>` (operator trace), `.quit`.

use std::io::{BufRead, Write};
use xquec::core::loader::{load_with, LoaderOptions};
use xquec::core::queries::xmark_workload;
use xquec::core::query::Engine;
use xquec::xml::gen::Dataset;

fn main() {
    let arg = std::env::args().nth(1).unwrap_or_else(|| "xmark:500000".into());
    let xml = if let Some(spec) = arg.strip_prefix("xmark:") {
        let bytes: usize = spec.parse().expect("xmark:<bytes>");
        eprintln!("generating an XMark-like document (~{bytes} bytes)…");
        Dataset::Xmark.generate(bytes)
    } else {
        std::fs::read_to_string(&arg).expect("readable XML file")
    };

    let opts = LoaderOptions { workload: Some(xmark_workload()), ..Default::default() };
    let repo = load_with(&xml, &opts).expect("well-formed XML");
    let report = repo.size_report();
    eprintln!(
        "loaded: {} -> {} bytes compressed (CF {:.1}%), {} containers, {} nodes",
        report.original,
        report.total(),
        report.compression_factor() * 100.0,
        repo.containers.len(),
        repo.tree.len()
    );
    let engine = Engine::new(&repo);

    let stdin = std::io::stdin();
    let mut out = std::io::stdout();
    loop {
        print!("xquec> ");
        out.flush().expect("stdout");
        let mut line = String::new();
        if stdin.lock().read_line(&mut line).expect("stdin") == 0 {
            break;
        }
        let line = line.trim();
        if line.is_empty() {
            continue;
        }
        match line {
            ".quit" | ".exit" => break,
            ".stats" => {
                let r = repo.size_report();
                println!("original    {:>12} bytes", r.original);
                println!("dictionary  {:>12}", r.dictionary);
                println!("node records{:>12}", r.structure_tree);
                println!("summary     {:>12}", r.summary);
                println!("containers  {:>12}", r.containers);
                println!("pointers    {:>12}", r.pointers);
                println!("models      {:>12}", r.models);
                println!("total       {:>12}  (CF {:.1}%)", r.total(), r.compression_factor() * 100.0);
            }
            ".containers" => {
                for (i, c) in repo.containers.iter().enumerate() {
                    println!(
                        "c{:<3} {:<50} {:>7} recs  {:<9} {}",
                        i,
                        repo.container_path_string(xquec::core::ContainerId(i as u32)),
                        c.len(),
                        c.codec().kind().name(),
                        if c.is_individual() { "individual" } else { "blz block" },
                    );
                }
            }
            _ if line.starts_with(".explain ") => {
                match engine.explain(&line[".explain ".len()..]) {
                    Ok(plan) if plan.is_empty() => println!("(no physical operators recorded)"),
                    Ok(plan) => println!("{plan}"),
                    Err(e) => println!("error: {e}"),
                }
            }
            query => {
                let t = std::time::Instant::now();
                match engine.run(query) {
                    Ok(result) => {
                        let stats = engine.stats.borrow();
                        println!("{result}");
                        println!(
                            "-- {:.2} ms, {} decompressions, {} compressed ops",
                            t.elapsed().as_secs_f64() * 1e3,
                            stats.decompressions,
                            stats.compressed_eq + stats.compressed_cmp
                        );
                    }
                    Err(e) => println!("error: {e}"),
                }
            }
        }
    }
}
